// Command faultsim explores the stochastic-FPU fault model: per-bit fault
// histograms, voltage sweeps, and raw corruption traces.
//
// Usage:
//
//	faultsim -mode hist|voltage|trace [-rate R] [-dist emulated|measured|uniform|low]
//	         [-n N] [-seed S]
//
// -n is a raw count in every mode: samples drawn in hist mode, ops traced
// in trace mode.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"robustify/internal/fpu"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	var (
		mode = fs.String("mode", "hist", "hist | voltage | trace")
		rate = fs.Float64("rate", 0.01, "faults per FLOP for trace mode")
		dist = fs.String("dist", "emulated", "bit distribution: emulated | measured | uniform | low")
		n    = fs.Int("n", 20000, "raw count: samples to draw (hist) / ops to trace (trace)")
		seed = fs.Uint64("seed", 1, "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	switch *mode {
	case "hist":
		return hist(pickDist(*dist), *n, *seed)
	case "voltage":
		return voltage()
	case "trace":
		return trace(pickDist(*dist), *rate, *n, *seed)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func pickDist(name string) fpu.BitDistribution {
	switch name {
	case "measured":
		return fpu.MeasuredDistribution()
	case "uniform":
		return fpu.UniformDistribution()
	case "low":
		return fpu.LowOrderDistribution()
	default:
		return fpu.EmulatedDistribution()
	}
}

func hist(d fpu.BitDistribution, n int, seed uint64) error {
	rng := fpu.NewLFSR(seed)
	counts := make([]int, fpu.WordBits)
	for i := 0; i < n; i++ {
		counts[d.Sample(rng.Float64())]++
	}
	fmt.Printf("distribution %q, %d samples\n", d.Name(), n)
	fmt.Println("bit   pmf      sampled  bar")
	for bit := fpu.WordBits - 1; bit >= 0; bit-- {
		p := d.Prob(bit)
		got := float64(counts[bit]) / float64(n)
		bar := ""
		for i := 0; i < int(p*400); i++ {
			bar += "#"
		}
		if p > 0 || got > 0 {
			fmt.Printf("%3d   %.4f   %.4f   %s\n", bit, p, got, bar)
		}
	}
	return nil
}

func voltage() error {
	m := fpu.DefaultVoltageModel()
	fmt.Println("voltage  error-rate     power")
	for step := 0; step <= 24; step++ {
		v := 1.20 - 0.025*float64(step)
		fmt.Printf("%6.3fV  %.3e    %.3f\n", v, m.ErrorRate(v), m.Power(v))
	}
	return nil
}

func trace(d fpu.BitDistribution, rate float64, n int, seed uint64) error {
	inj := fpu.NewInjector(rate, seed, fpu.WithDistribution(d))
	u := fpu.New(fpu.WithInjector(inj))
	fmt.Printf("tracing %d multiply-accumulate ops at rate %g (%s bits)\n", n, rate, d.Name())
	acc := 0.0
	for i := 0; i < n; i++ {
		exact := acc + 1.1*float64(i+1)
		got := u.FMA(1.1, float64(i+1), acc)
		mark := " "
		if got != exact {
			mark = "*"
			fmt.Printf("%s op %4d: exact %-22.17g got %-22.17g (rel %.2e)\n",
				mark, i, exact, got, relErr(got, exact))
		}
		acc = got
	}
	fmt.Printf("%d FLOPs, %d faults\n", u.FLOPs(), u.Faults())
	return nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
