// Command faultsim explores the stochastic-FPU fault model: per-bit fault
// histograms, voltage sweeps, and raw corruption traces.
//
// Usage:
//
//	faultsim -mode hist|voltage|trace [-rate R] [-dist emulated|measured|uniform|low]
//	         [-model M] [-n N] [-seed S]
//
// -n is a raw count in every mode: samples drawn in hist mode, ops traced
// in trace mode. -model selects the trace's fault model (default,
// stratified, burst, memory — a bare name or a faultmodel JSON spec like
// {"name":"burst","burst_len":128}); it overrides -dist, which only
// parameterizes the default model.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"robustify/internal/fpu"
	"robustify/internal/fpu/faultmodel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	var (
		mode  = fs.String("mode", "hist", "hist | voltage | trace")
		rate  = fs.Float64("rate", 0.01, "faults per FLOP for trace mode")
		dist  = fs.String("dist", "emulated", "bit distribution: emulated | measured | uniform | low")
		model = fs.String("model", "", "trace fault model: name or JSON spec (see fpu/faultmodel); overrides -dist")
		n     = fs.Int("n", 20000, "raw count: samples to draw (hist) / ops to trace (trace)")
		seed  = fs.Uint64("seed", 1, "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	switch *mode {
	case "hist":
		return hist(pickDist(*dist), *n, *seed)
	case "voltage":
		return voltage()
	case "trace":
		if *model != "" {
			spec, err := faultmodel.Parse(*model)
			if err != nil {
				return err
			}
			return traceModel(spec, *rate, *n, *seed)
		}
		return trace(pickDist(*dist), *rate, *n, *seed)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func pickDist(name string) fpu.BitDistribution {
	switch name {
	case "measured":
		return fpu.MeasuredDistribution()
	case "uniform":
		return fpu.UniformDistribution()
	case "low":
		return fpu.LowOrderDistribution()
	default:
		return fpu.EmulatedDistribution()
	}
}

func hist(d fpu.BitDistribution, n int, seed uint64) error {
	rng := fpu.NewLFSR(seed)
	counts := make([]int, fpu.WordBits)
	for i := 0; i < n; i++ {
		counts[d.Sample(rng.Float64())]++
	}
	fmt.Printf("distribution %q, %d samples\n", d.Name(), n)
	fmt.Println("bit   pmf      sampled  bar")
	for bit := fpu.WordBits - 1; bit >= 0; bit-- {
		p := d.Prob(bit)
		got := float64(counts[bit]) / float64(n)
		bar := ""
		for i := 0; i < int(p*400); i++ {
			bar += "#"
		}
		if p > 0 || got > 0 {
			fmt.Printf("%3d   %.4f   %.4f   %s\n", bit, p, got, bar)
		}
	}
	return nil
}

func voltage() error {
	m := fpu.DefaultVoltageModel()
	fmt.Println("voltage  error-rate     power")
	for step := 0; step <= 24; step++ {
		v := 1.20 - 0.025*float64(step)
		fmt.Printf("%6.3fV  %.3e    %.3f\n", v, m.ErrorRate(v), m.Power(v))
	}
	return nil
}

func trace(d fpu.BitDistribution, rate float64, n int, seed uint64) error {
	inj := fpu.NewInjector(rate, seed, fpu.WithDistribution(d))
	u := fpu.New(fpu.WithInjector(inj))
	fmt.Printf("tracing %d multiply-accumulate ops at rate %g (%s bits)\n", n, rate, d.Name())
	acc := 0.0
	for i := 0; i < n; i++ {
		exact := acc + 1.1*float64(i+1)
		got := u.FMA(1.1, float64(i+1), acc)
		mark := " "
		if got != exact {
			mark = "*"
			fmt.Printf("%s op %4d: exact %-22.17g got %-22.17g (rel %.2e)\n",
				mark, i, exact, got, relErr(got, exact))
		}
		acc = got
	}
	fmt.Printf("%d FLOPs, %d faults\n", u.FLOPs(), u.Faults())
	return nil
}

// traceModel is trace under a selectable fault model. The loop keeps its
// running state in a small vector it exposes to the model between blocks
// of multiply-accumulates, so memory-resident models have stored words to
// strike and FLOP-level models show their scheduling (the hook is a no-op
// for them).
func traceModel(spec *faultmodel.Spec, rate float64, n int, seed uint64) error {
	u := spec.Unit(rate, seed)
	state := make([]float64, 8)
	fmt.Printf("tracing %d multiply-accumulate ops at rate %g (model %s)\n", n, rate, spec.ModelName())
	exact := make([]float64, 8)
	for i := 0; i < n; i++ {
		slot := i % 8
		want := exact[slot] + 1.1*float64(i+1)
		got := u.FMA(1.1, float64(i+1), state[slot])
		if got != want {
			fmt.Printf("* op %4d: exact %-22.17g got %-22.17g (rel %.2e)\n",
				i, want, got, relErr(got, want))
		}
		state[slot] = got
		// Track the faulted value from here on: each report is one fault,
		// not the echo of every earlier one.
		exact[slot] = got
		if slot == 7 {
			u.CorruptSlice(state)
			for j := range state {
				if state[j] != exact[j] {
					fmt.Printf("* mem slot %d after op %4d: exact %-22.17g got %-22.17g\n",
						j, i, exact[j], state[j])
					exact[j] = state[j]
				}
			}
		}
	}
	var injected uint64
	if m := u.Model(); m != nil {
		injected = m.Injected()
	}
	fmt.Printf("%d FLOPs, %d faults, %d model injections\n", u.FLOPs(), u.Faults(), injected)
	return nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
