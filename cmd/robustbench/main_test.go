package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunQuickFigure(t *testing.T) {
	if err := run([]string{"-fig", "5.2", "-quick"}); err != nil {
		t.Fatalf("quick 5.2: %v", err)
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "5.2", "-quick", "-csv", dir}); err != nil {
		t.Fatalf("csv export: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig-5_2.csv"))
	if err != nil {
		t.Fatalf("csv file missing: %v", err)
	}
	if len(data) == 0 {
		t.Error("csv file empty")
	}
}

func TestRunUnknownFigureIsNoop(t *testing.T) {
	if err := run([]string{"-fig", "99.9"}); err != nil {
		t.Fatalf("unknown figure should be a no-op, got %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestMatch(t *testing.T) {
	if !match([]string{"all"}, "6.1") {
		t.Error("all must match everything")
	}
	if !match([]string{"6.1", "6.2"}, "6.2") {
		t.Error("listed id must match")
	}
	if match([]string{"6.1"}, "6.2") {
		t.Error("unlisted id matched")
	}
	if !match([]string{" 6.3"}, "6.3") {
		t.Error("whitespace-padded id must match")
	}
}
