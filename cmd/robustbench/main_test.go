package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunQuickFigure(t *testing.T) {
	if err := run([]string{"-fig", "5.2", "-quick"}); err != nil {
		t.Fatalf("quick 5.2: %v", err)
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "5.2", "-quick", "-csv", dir}); err != nil {
		t.Fatalf("csv export: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig-5_2.csv"))
	if err != nil {
		t.Fatalf("csv file missing: %v", err)
	}
	if len(data) == 0 {
		t.Error("csv file empty")
	}
}

func TestRunUnknownFigureIsNoop(t *testing.T) {
	if err := run([]string{"-fig", "99.9"}); err != nil {
		t.Fatalf("unknown figure should be a no-op, got %v", err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	// -workers must only schedule, never change results; smoke it on a
	// sweep-shaped figure.
	if err := run([]string{"-fig", "6.1", "-quick", "-workers", "2"}); err != nil {
		t.Fatalf("-workers: %v", err)
	}
}

func TestRunOutPersistsAndResumes(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "6.1", "-quick", "-seed", "7", "-out", dir}); err != nil {
		t.Fatalf("-out run: %v", err)
	}
	store := filepath.Join(dir, "fig-6_1", "trials.jsonl")
	data, err := os.ReadFile(store)
	if err != nil {
		t.Fatalf("trials store missing: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("trials store empty")
	}
	spec, err := os.ReadFile(filepath.Join(dir, "fig-6_1", "spec.json"))
	if err != nil || len(spec) == 0 {
		t.Fatalf("spec.json missing: %v", err)
	}
	// A resume of the complete store re-executes nothing and succeeds.
	if err := run([]string{"-fig", "6.1", "-quick", "-seed", "7", "-resume", dir}); err != nil {
		t.Fatalf("-resume run: %v", err)
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Errorf("resume of a complete store grew it: %d -> %d bytes", len(data), len(after))
	}
}

func TestRunResumeRejectsChangedSpec(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "6.1", "-quick", "-seed", "7", "-out", dir}); err != nil {
		t.Fatalf("-out run: %v", err)
	}
	if err := run([]string{"-fig", "6.1", "-quick", "-seed", "8", "-resume", dir}); err == nil {
		t.Error("resume with a different seed must be rejected")
	}
}

func TestRunOutFallsBackForUnplannedFigure(t *testing.T) {
	// 5.2 is not sweep-shaped; -out must fall back to the eager build.
	if err := run([]string{"-fig", "5.2", "-quick", "-out", t.TempDir()}); err != nil {
		t.Fatalf("non-sweep figure with -out: %v", err)
	}
}

// TestRunTuneAndRerun: -tune runs a full search, persists tune.json,
// and a rerun with -resume serves the finished result without starting
// a second search (same run directory, identical trace).
func TestRunTuneAndRerun(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-tune", "leastsq/cg", "-tune-rates", "0.02", "-tune-knobs", "budget",
		"-tune-rounds", "1", "-trials", "2", "-seed", "3", "-out", dir}
	if err := run(args); err != nil {
		t.Fatalf("-tune run: %v", err)
	}
	trace := filepath.Join(dir, "tunes", "t0001", "tune.json")
	first, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("tune trace missing: %v", err)
	}
	rerun := append([]string{}, args...)
	rerun[len(rerun)-2] = "-resume"
	if err := run(rerun); err != nil {
		t.Fatalf("-resume rerun: %v", err)
	}
	second, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("rerun changed the finished trace:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if entries, _ := os.ReadDir(filepath.Join(dir, "tunes")); len(entries) != 1 {
		t.Errorf("rerun started a second search: %d run dirs", len(entries))
	}
}

// TestRunTuneResumeRejectsChangedFlags: a rerun whose flags no longer
// match the stored search must error instead of silently starting a
// fresh search beside the invested one.
func TestRunTuneResumeRejectsChangedFlags(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-tune", "leastsq/cg", "-tune-rates", "0.02", "-tune-knobs", "budget",
		"-tune-rounds", "1", "-trials", "2", "-seed", "3", "-out", dir}); err != nil {
		t.Fatalf("-tune run: %v", err)
	}
	err := run([]string{"-tune", "leastsq/cg", "-tune-rates", "0.02", "-tune-knobs", "budget",
		"-tune-rounds", "1", "-trials", "2", "-seed", "4", "-resume", dir})
	if err == nil {
		t.Fatal("changed -seed silently started a new search")
	}
	if entries, _ := os.ReadDir(filepath.Join(dir, "tunes")); len(entries) != 1 {
		t.Errorf("mismatch rerun created run dirs: %d", len(entries))
	}
}

func TestRunTuneNeedsOut(t *testing.T) {
	if err := run([]string{"-tune", "leastsq/cg"}); err == nil {
		t.Error("-tune without -out accepted")
	}
}

func TestRunTuneUnknownWorkload(t *testing.T) {
	if err := run([]string{"-tune", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("unknown tune workload accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestMatch(t *testing.T) {
	if !match([]string{"all"}, "6.1") {
		t.Error("all must match everything")
	}
	if !match([]string{"6.1", "6.2"}, "6.2") {
		t.Error("listed id must match")
	}
	if match([]string{"6.1"}, "6.2") {
		t.Error("unlisted id matched")
	}
	if !match([]string{" 6.3"}, "6.3") {
		t.Error("whitespace-padded id must match")
	}
}
