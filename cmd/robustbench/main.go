// Command robustbench regenerates the tables and figures of the paper's
// evaluation on the simulated stochastic-FPU substrate.
//
// Usage:
//
//	robustbench [-fig all|5.1|5.2|6.1|...|6.7|momentum|flops]
//	            [-trials N] [-seed S] [-quick] [-csv DIR] [-list]
//
// With -csv, each figure is additionally written as DIR/fig-<id>.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"robustify/internal/figures"
	"robustify/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "robustbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("robustbench", flag.ContinueOnError)
	var (
		fig    = fs.String("fig", "all", "figure id to regenerate, or 'all'")
		trials = fs.Int("trials", 0, "trials per cell (0 = figure default)")
		seed   = fs.Uint64("seed", 1, "base RNG seed")
		quick  = fs.Bool("quick", false, "scaled-down problem sizes and grids")
		csvDir = fs.String("csv", "", "directory for CSV export (optional)")
		list   = fs.Bool("list", false, "list available figures and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-8s %s\n", f.ID, f.Desc)
		}
		return nil
	}
	cfg := figures.Config{Trials: *trials, Seed: *seed, Quick: *quick}
	selected := strings.Split(*fig, ",")
	for _, f := range figures.All() {
		if !match(selected, f.ID) {
			continue
		}
		start := time.Now()
		table := f.Build(cfg)
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("[%s took %v]\n\n", f.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, f.ID, table); err != nil {
				return err
			}
		}
	}
	return nil
}

func match(selected []string, id string) bool {
	for _, s := range selected {
		if s == "all" || strings.TrimSpace(s) == id {
			return true
		}
	}
	return false
}

func writeCSV(dir, id string, table *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig-"+strings.ReplaceAll(id, ".", "_")+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := table.CSV(f); err != nil {
		return err
	}
	return f.Close()
}
