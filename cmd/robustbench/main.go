// Command robustbench regenerates the tables and figures of the paper's
// evaluation on the simulated stochastic-FPU substrate.
//
// Usage:
//
//	robustbench [-fig all|5.1|5.2|6.1|...|6.7|momentum|flops]
//	            [-trials N] [-seed S] [-quick] [-workers N]
//	            [-csv DIR] [-out DIR] [-resume DIR] [-list]
//
// With -csv, each figure is additionally written as DIR/fig-<id>.csv.
// With -out, every completed trial of a sweep-shaped figure is persisted
// to an append-only campaign store under DIR as it finishes; an
// interrupted run restarted with -resume DIR re-executes only the missing
// trials and produces a table byte-identical to an uninterrupted run with
// the same flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"robustify/internal/campaign"
	"robustify/internal/figures"
	"robustify/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "robustbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("robustbench", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", "figure id to regenerate, or 'all'")
		trials  = fs.Int("trials", 0, "trials per cell (0 = figure default)")
		seed    = fs.Uint64("seed", 1, "base RNG seed")
		quick   = fs.Bool("quick", false, "scaled-down problem sizes and grids")
		workers = fs.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
		csvDir  = fs.String("csv", "", "directory for CSV export (optional)")
		outDir  = fs.String("out", "", "persist per-trial results to campaign stores under DIR")
		resume  = fs.String("resume", "", "resume persisted campaign stores under DIR (implies -out DIR)")
		list    = fs.Bool("list", false, "list available figures and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-8s %s\n", f.ID, f.Desc)
		}
		return nil
	}
	if *outDir != "" && *resume != "" && *outDir != *resume {
		return fmt.Errorf("-out %s and -resume %s disagree; -resume already persists, pass only one", *outDir, *resume)
	}
	storeDir := *outDir
	if *resume != "" {
		storeDir = *resume
	}
	ctx := context.Background()
	if storeDir != "" {
		// Only campaign runs are interrupt-aware (trials stay durable and
		// resumable); leave the default terminate-on-SIGINT behavior for
		// storeless runs. After the first Ctrl-C, restore the default so
		// a second one can force-quit a hung trial.
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt)
		defer stop()
		context.AfterFunc(ctx, stop)
	}

	cfg := figures.Config{Trials: *trials, Seed: *seed, Quick: *quick, Workers: *workers}
	selected := strings.Split(*fig, ",")
	for _, f := range figures.All() {
		if !match(selected, f.ID) {
			continue
		}
		start := time.Now()
		var table *harness.Table
		if storeDir != "" && figures.HasPlan(f.ID) {
			var err error
			table, err = runCampaign(ctx, storeDir, f.ID, cfg)
			if err != nil {
				return err
			}
			if table == nil { // interrupted: completed trials are on disk
				return fmt.Errorf("interrupted; rerun with -resume %s to continue", storeDir)
			}
		} else {
			if storeDir != "" {
				fmt.Fprintf(os.Stderr, "robustbench: figure %s is not sweep-shaped; running without a store\n", f.ID)
			}
			table = f.Build(cfg)
		}
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("[%s took %v]\n\n", f.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, f.ID, table); err != nil {
				return err
			}
		}
	}
	return nil
}

// runCampaign executes one figure through the campaign engine so every
// completed trial is durable under dir and prior runs are resumed instead
// of repeated. A nil table with nil error means ctx was cancelled.
func runCampaign(ctx context.Context, dir, id string, cfg figures.Config) (*harness.Table, error) {
	spec := campaign.Spec{
		Figure:  id,
		Trials:  cfg.Trials,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Quick:   cfg.Quick,
	}
	camp, err := campaign.Compile(spec)
	if err != nil {
		return nil, err
	}
	st, err := campaign.Open(filepath.Join(dir, figFileName(id)))
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if prev, ok, err := st.LoadSpec(); err != nil {
		return nil, err
	} else if ok && !campaign.ResumeCompatible(prev, spec) {
		return nil, fmt.Errorf("store %s was created by a different run (figure/trials/seed/quick changed); use a fresh -out directory", st.Dir())
	}
	if err := st.SaveSpec(spec); err != nil {
		return nil, err
	}
	exec := campaign.NewExecution(camp, st)
	if done := exec.Progress().Done; done > 0 {
		fmt.Fprintf(os.Stderr, "robustbench: resuming %s: %d/%d trials already recorded\n", id, done, camp.Total())
	}
	if err := exec.Run(ctx); err != nil {
		if ctx.Err() != nil {
			return nil, nil
		}
		return nil, err
	}
	return exec.Table(), nil
}

// figFileName is the on-disk name for a figure's store directory and CSV
// file stem; the layout is pinned by tests and docs, so both users share it.
func figFileName(id string) string {
	return "fig-" + strings.ReplaceAll(id, ".", "_")
}

func match(selected []string, id string) bool {
	for _, s := range selected {
		if s == "all" || strings.TrimSpace(s) == id {
			return true
		}
	}
	return false
}

func writeCSV(dir, id string, table *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, figFileName(id)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := table.CSV(f); err != nil {
		return err
	}
	return f.Close()
}
