// Command robustbench regenerates the tables and figures of the paper's
// evaluation on the simulated stochastic-FPU substrate.
//
// Usage:
//
//	robustbench [-fig all|5.1|5.2|6.1|...|6.7|momentum|flops]
//	            [-trials N] [-seed S] [-quick] [-workers N] [-fault-model M]
//	            [-csv DIR] [-out DIR] [-resume DIR] [-telemetry FILE] [-list]
//	robustbench -tune WORKLOAD -out DIR [-tune-rates R1,R2] [-tune-knobs K1,K2]
//	            [-tune-rounds N] [-tune-iters N] [-tune-agg mean|median]
//	            [-trials N] [-seed S] [-workers N] [-fault-model M]
//
// -fault-model selects the fault-injection model every trial runs under:
// a family name (default, stratified, burst, memory) or a faultmodel JSON
// spec like {"name":"burst","burst_len":128}. It is part of a persisted
// run's resume identity, and with -tune it also puts the family's fm_*
// parameters on the search grid.
//
// With -telemetry, every faulty FPU built during the run gets a passive
// fault-placement recorder (see internal/obs), and a per-rate aggregate —
// faults by op, IEEE-754 bit class, burst clustering, iteration bucket —
// is written as JSON to FILE ('-' = stdout) when the run completes.
// Recorders never consume randomness or touch values, so results are
// bit-identical with or without the flag.
//
// With -csv, each figure is additionally written as DIR/fig-<id>.csv.
// With -out, every completed trial of a sweep-shaped figure is persisted
// to an append-only campaign store under DIR as it finishes; an
// interrupted run restarted with -resume DIR re-executes only the missing
// trials and produces a table byte-identical to an uninterrupted run with
// the same flags.
//
// With -tune, robustbench searches WORKLOAD's declared knob grid
// (penalty weight, step constants, iteration budgets — see
// internal/tune) instead of building figures: every candidate
// configuration runs as a durable campaign under DIR, the search state
// persists to DIR/tunes/<id>/tune.json, and a killed run restarted with
// -resume DIR continues from the last completed evaluation, finishing
// with a trace byte-identical to an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"robustify/internal/campaign"
	"robustify/internal/figures"
	"robustify/internal/fpu/faultmodel"
	"robustify/internal/harness"
	"robustify/internal/obs"
	"robustify/internal/tune"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "robustbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("robustbench", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", "figure id to regenerate, or 'all'")
		trials  = fs.Int("trials", 0, "trials per cell (0 = figure default)")
		seed    = fs.Uint64("seed", 1, "base RNG seed")
		quick   = fs.Bool("quick", false, "scaled-down problem sizes and grids")
		workers = fs.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
		fmFlag  = fs.String("fault-model", "", "fault model: name or JSON spec (see fpu/faultmodel; default: the paper's injector)")
		csvDir  = fs.String("csv", "", "directory for CSV export (optional)")
		teleOut = fs.String("telemetry", "",
			"write a per-rate fault-placement report (JSON) to FILE after the run ('-' = stdout)")
		outDir = fs.String("out", "", "persist per-trial results to campaign stores under DIR")
		resume = fs.String("resume", "", "resume persisted campaign stores under DIR (implies -out DIR)")
		list   = fs.Bool("list", false, "list available figures and exit")

		tuneW      = fs.String("tune", "", "search WORKLOAD's knob grid instead of building figures (needs -out or -resume)")
		tuneRates  = fs.String("tune-rates", "0.01,0.05", "fixed fault-rate grid for tune evaluations (comma-separated)")
		tuneKnobs  = fs.String("tune-knobs", "", "knob subset to search (comma-separated; default: all declared)")
		tuneRounds = fs.Int("tune-rounds", 0, "coordinate-descent rounds (0 = 2)")
		tuneIters  = fs.Int("tune-iters", 0, "iteration budget per trial (0 = workload default)")
		tuneAgg    = fs.String("tune-agg", "", "per-cell aggregator for tune evaluations: mean (default) or median")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-8s %s\n", f.ID, f.Desc)
		}
		return nil
	}
	if *outDir != "" && *resume != "" && *outDir != *resume {
		return fmt.Errorf("-out %s and -resume %s disagree; -resume already persists, pass only one", *outDir, *resume)
	}
	storeDir := *outDir
	if *resume != "" {
		storeDir = *resume
	}
	ctx := context.Background()
	if storeDir != "" {
		// Only campaign runs are interrupt-aware (trials stay durable and
		// resumable); leave the default terminate-on-SIGINT behavior for
		// storeless runs. After the first Ctrl-C, restore the default so
		// a second one can force-quit a hung trial.
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt)
		defer stop()
		context.AfterFunc(ctx, stop)
	}

	model, err := faultmodel.Parse(*fmFlag)
	if err != nil {
		return err
	}

	var collector *obs.Collector
	if *teleOut != "" {
		collector = obs.NewCollector()
		faultmodel.SetUnitObserver(collector.Observer)
	}

	if *tuneW != "" {
		rates, err := parseRates(*tuneRates)
		if err != nil {
			return err
		}
		spec := tune.Spec{
			Workload:   *tuneW,
			Rates:      rates,
			Trials:     *trials,
			Iters:      *tuneIters,
			Agg:        *tuneAgg,
			Seed:       *seed,
			Rounds:     *tuneRounds,
			Workers:    *workers,
			FaultModel: model,
		}
		for _, k := range strings.Split(*tuneKnobs, ",") {
			if k = strings.TrimSpace(k); k != "" {
				spec.Knobs = append(spec.Knobs, k)
			}
		}
		if err := runTune(ctx, storeDir, spec); err != nil {
			return err
		}
		return writeTelemetry(*teleOut, collector)
	}

	cfg := figures.Config{Trials: *trials, Seed: *seed, Quick: *quick, Workers: *workers, FaultModel: model}
	selected := strings.Split(*fig, ",")
	for _, f := range figures.All() {
		if !match(selected, f.ID) {
			continue
		}
		start := time.Now()
		var table *harness.Table
		if storeDir != "" && figures.HasPlan(f.ID) {
			var err error
			table, err = runCampaign(ctx, storeDir, f.ID, cfg)
			if err != nil {
				return err
			}
			if table == nil { // interrupted: completed trials are on disk
				return fmt.Errorf("interrupted; rerun with -resume %s to continue", storeDir)
			}
		} else {
			if storeDir != "" {
				fmt.Fprintf(os.Stderr, "robustbench: figure %s is not sweep-shaped; running without a store\n", f.ID)
			}
			table = f.Build(cfg)
		}
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("[%s took %v]\n\n", f.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, f.ID, table); err != nil {
				return err
			}
		}
	}
	return writeTelemetry(*teleOut, collector)
}

// writeTelemetry drains the run's fault recorders, aggregates them per
// swept fault rate, and writes the report as indented JSON to path
// ('-' = stdout). A nil collector (no -telemetry) is a no-op.
func writeTelemetry(path string, collector *obs.Collector) error {
	if collector == nil {
		return nil
	}
	type rateReport struct {
		Rate   float64          `json:"rate"`
		Faults obs.FaultSummary `json:"faults"`
	}
	byRate := collector.DrainByRate()
	rates := make([]float64, 0, len(byRate))
	for rate := range byRate {
		//lint:detmap-exempt keys are sorted before use
		rates = append(rates, rate)
	}
	sort.Float64s(rates)
	report := make([]rateReport, 0, len(rates))
	for _, rate := range rates {
		report = append(report, rateReport{Rate: rate, Faults: byRate[rate].Summary()})
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// runCampaign executes one figure through the campaign engine so every
// completed trial is durable under dir and prior runs are resumed instead
// of repeated. A nil table with nil error means ctx was cancelled.
func runCampaign(ctx context.Context, dir, id string, cfg figures.Config) (table *harness.Table, err error) {
	spec := campaign.Spec{
		Figure:     id,
		Trials:     cfg.Trials,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		Quick:      cfg.Quick,
		FaultModel: cfg.FaultModel,
	}
	camp, err := campaign.Compile(spec)
	if err != nil {
		return nil, err
	}
	st, err := campaign.Open(filepath.Join(dir, figFileName(id)))
	if err != nil {
		return nil, err
	}
	defer func() {
		// The close is the store's last flush: reporting a table as
		// durable over a failed close would claim trials the next resume
		// cannot find.
		if cerr := st.Close(); cerr != nil && err == nil {
			table, err = nil, fmt.Errorf("closing store %s: %w", st.Dir(), cerr)
		}
	}()
	if prev, ok, err := st.LoadSpec(); err != nil {
		return nil, err
	} else if ok && !campaign.ResumeCompatible(prev, spec) {
		return nil, fmt.Errorf("store %s was created by a different run (figure/trials/seed/quick/fault-model changed); use a fresh -out directory", st.Dir())
	}
	if err := st.SaveSpec(spec); err != nil {
		return nil, err
	}
	exec := campaign.NewExecution(camp, st)
	if done := exec.Progress().Done; done > 0 {
		fmt.Fprintf(os.Stderr, "robustbench: resuming %s: %d/%d trials already recorded\n", id, done, camp.Total())
	}
	if err := exec.Run(ctx); err != nil {
		if ctx.Err() != nil {
			return nil, nil
		}
		return nil, err
	}
	return exec.Table(), nil
}

// runTune drives one parameter search to completion under dir: a fresh
// search submits, a prior interrupted/cancelled/failed search with the
// same spec resumes, and a completed one just reprints its results —
// so a killed run rerun with -resume picks up exactly where it stopped.
func runTune(ctx context.Context, dir string, spec tune.Spec) error {
	if dir == "" {
		return fmt.Errorf("-tune needs -out DIR (or -resume DIR) for the durable search state")
	}
	cm, err := campaign.NewManager(dir, 0)
	if err != nil {
		return err
	}
	defer cm.Close()
	tm, err := tune.NewManager(filepath.Join(dir, "tunes"), cm)
	if err != nil {
		return err
	}
	defer tm.Close()

	id := ""
	existing := tm.List()
	for _, st := range existing {
		if tune.ResumeCompatible(st.Spec, spec) {
			id = st.ID
			break
		}
	}
	switch {
	case id == "":
		// Refuse to quietly start a fresh search next to prior runs: a
		// rerun with one flag off would otherwise abandon the invested
		// work without a word (the figure -resume path errors the same
		// way on a spec mismatch).
		if len(existing) > 0 {
			return fmt.Errorf("%s holds %d tune run(s) created with different flags; rerun with the original flags or use a fresh -out directory", dir, len(existing))
		}
		if id, err = tm.Submit(spec); err != nil {
			return err
		}
	default:
		st, err := tm.Get(id)
		if err != nil {
			return err
		}
		if st.State != tune.StateDone {
			fmt.Fprintf(os.Stderr, "robustbench: resuming tune %s: %d evaluations already recorded\n", id, st.EvalsCompleted)
			if err := tm.Resume(id); err != nil {
				return err
			}
		}
	}

	done := make(chan error, 1)
	go func() { done <- tm.Wait(id) }()
	select {
	case err := <-done:
		if err != nil {
			return err
		}
	case <-ctx.Done():
		tm.Interrupt()
		cm.Close()
		tm.Close()
		return fmt.Errorf("interrupted; rerun with -resume %s to continue the search", dir)
	}
	st, err := tm.Get(id)
	if err != nil {
		return err
	}
	if st.State != tune.StateDone {
		return fmt.Errorf("tune %s ended %s: %s", id, st.State, st.Error)
	}
	printTune(os.Stdout, st)
	return nil
}

// printTune renders a finished search: per-candidate table, best-so-far
// trajectory, and the winning configuration.
func printTune(w io.Writer, st tune.Status) {
	fmt.Fprintf(w, "tune %s: %s (%d evaluations)\n", st.ID, st.Spec.Workload, st.EvalsCompleted)
	fmt.Fprintf(w, "%-5s  %-8s  %-24s  %s\n", "eval", "trials", "params", "objective")
	for _, e := range st.Evals {
		obj := "-"
		if e.Objective != nil {
			obj = fmt.Sprintf("%g", *e.Objective)
		}
		fmt.Fprintf(w, "%-5d  %-8d  %-24s  %s\n", e.N, e.Trials, formatParams(e.Params), obj)
	}
	fmt.Fprintln(w, "best-so-far:")
	for _, b := range st.Best {
		fmt.Fprintf(w, "  eval %-4d %-24s  %g\n", b.Eval, formatParams(b.Params), b.Objective)
	}
	if st.FinalObjective != nil {
		fmt.Fprintf(w, "best: %s  objective=%g\n", formatParams(st.Final), *st.FinalObjective)
	}
}

// formatParams renders a knob configuration with sorted keys.
func formatParams(p map[string]float64) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, p[k])
	}
	return strings.Join(parts, " ")
}

// parseRates parses a comma-separated fault-rate list.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -tune-rates entry %q: %w", part, err)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-tune-rates is empty")
	}
	return rates, nil
}

// figFileName is the on-disk name for a figure's store directory and CSV
// file stem; the layout is pinned by tests and docs, so both users share it.
func figFileName(id string) string {
	return "fig-" + strings.ReplaceAll(id, ".", "_")
}

func match(selected []string, id string) bool {
	for _, s := range selected {
		if s == "all" || strings.TrimSpace(s) == id {
			return true
		}
	}
	return false
}

func writeCSV(dir, id string, table *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, figFileName(id)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := table.CSV(f); err != nil {
		return err
	}
	return f.Close()
}
