// Command robustlint runs the repo's custom static-analysis suite — the
// determinism, durability, and FPU-mediation invariants generic tooling
// cannot check. See internal/analysis for the analyzers and the
// //lint:<directive> <reason> exemption convention.
//
// Usage:
//
//	go run ./cmd/robustlint ./...
//	go run ./cmd/robustlint -only fpumediation,seededrand ./internal/...
//	go run ./cmd/robustlint -format=json ./...
//
// -format=json emits a JSON array of findings — including the ones
// //lint: directives suppressed, each with its written exempt_reason —
// so CI can archive the full audit surface. The exit status counts live
// findings only, in every format.
//
// Exit status: 0 clean, 1 diagnostics found, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"robustify/internal/analysis"
)

// jsonDiagnostic is the -format=json record schema.
type jsonDiagnostic struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Analyzer     string `json:"analyzer"`
	Message      string `json:"message"`
	Exempted     bool   `json:"exempted"`
	ExemptReason string `json:"exempt_reason,omitempty"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", "text", "output format: text or json (json includes exempted findings)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: robustlint [-only a,b] [-format text|json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "robustlint: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s (exempt: //lint:%s <reason>)\n", a.Name, a.Doc, a.Directive)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "robustlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunWithExempted(wd, suite, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustlint:", err)
		os.Exit(2)
	}
	relName := func(name string) string {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}
	live := 0
	for _, d := range diags {
		if !d.Exempted {
			live++
		}
	}
	switch *format {
	case "json":
		records := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			records = append(records, jsonDiagnostic{
				File:         relName(d.Pos.Filename),
				Line:         d.Pos.Line,
				Col:          d.Pos.Column,
				Analyzer:     d.Analyzer,
				Message:      d.Message,
				Exempted:     d.Exempted,
				ExemptReason: d.ExemptReason,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, "robustlint:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			if d.Exempted {
				continue
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "robustlint: %d diagnostic(s)\n", live)
		os.Exit(1)
	}
}
