// Command robustlint runs the repo's custom static-analysis suite — the
// determinism, durability, and FPU-mediation invariants generic tooling
// cannot check. See internal/analysis for the analyzers and the
// //lint:<directive> <reason> exemption convention.
//
// Usage:
//
//	go run ./cmd/robustlint ./...
//	go run ./cmd/robustlint -only fpumediation,seededrand ./internal/...
//
// Exit status: 0 clean, 1 diagnostics found, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"robustify/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: robustlint [-only a,b] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s (exempt: //lint:%s <reason>)\n", a.Name, a.Doc, a.Directive)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "robustlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(wd, suite, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "robustlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
