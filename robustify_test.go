package robustify_test

import (
	"math"
	"testing"

	"robustify"
)

// TestPublicAPIQuickstart exercises the facade end to end: build a tiny
// least squares problem, solve it robustly on a faulty FPU, and verify the
// answer — the quickstart example as a test.
func TestPublicAPIQuickstart(t *testing.T) {
	a := robustify.MatrixOf([][]float64{
		{1, 0}, {0, 1}, {1, 1}, {1, -1},
	})
	xTrue := []float64{2, -3}
	b := make([]float64, 4)
	a.MulVec(nil, xTrue, b)

	u := robustify.NewFPU(robustify.WithFaultRate(0.005, 9))
	p, err := robustify.NewLeastSquares(u, a, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := robustify.SGD(p, make([]float64, 2), robustify.SolveOptions{
		Iters:      2000,
		Schedule:   robustify.Linear(8 / p.Lipschitz()),
		Aggressive: robustify.DefaultAggressive(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 0.05 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], xTrue[i])
		}
	}
}

func TestPublicAPISort(t *testing.T) {
	data := []float64{7.5, 2.5, 10, 5, 12.5}
	u := robustify.NewFPU(robustify.WithFaultRate(0.05, 3))
	out, _, err := robustify.RobustSort(u, data, robustify.SortOptions{Iters: 6000, Tail: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if !robustify.SortSucceeded(out, data) {
		t.Errorf("robust sort failed: %v", out)
	}
	if robustify.SortSucceeded([]float64{3, 1, 2}, []float64{1, 2, 3}) {
		t.Error("misordered output accepted")
	}
}

func TestPublicAPIFPUAccounting(t *testing.T) {
	u := robustify.NewFPU()
	u.Add(1, 2)
	u.Mul(2, 2)
	if u.FLOPs() != 2 {
		t.Errorf("FLOPs = %d", u.FLOPs())
	}
	if !u.Reliable() {
		t.Error("default FPU should be reliable")
	}
	faulty := robustify.NewFPU(robustify.WithFaultRate(1, 1))
	if faulty.Reliable() {
		t.Error("rate-1 FPU should not be reliable")
	}
}

func TestPublicAPIVoltageModel(t *testing.T) {
	m := robustify.DefaultVoltageModel()
	if m.ErrorRate(m.Nominal) != 0 {
		t.Error("nominal voltage must be error-free")
	}
	if m.ErrorRate(0.7) <= 0 {
		t.Error("overscaled voltage must produce errors")
	}
}

func TestPublicAPIFilter(t *testing.T) {
	f, err := robustify.LowpassFilter(6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	signal := make([]float64, 80)
	for i := range signal {
		signal[i] = math.Sin(float64(i) / 5)
	}
	ideal := f.Ideal(signal)
	y, _, err := f.Robust(nil, signal, robustify.FilterOptions{Iters: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-ideal[i]) > 1e-6 {
			t.Fatalf("robust output diverges from ideal at %d", i)
		}
	}
}

func TestPublicAPIPenaltyLP(t *testing.T) {
	// min -x s.t. x <= 3, -x <= 0 → x* = 3.
	ineq := robustify.MatrixOf([][]float64{{1}, {-1}})
	lp := robustify.LinearProgram{C: []float64{-1}, Ineq: ineq, BIneq: []float64{3, 0}}
	p, err := robustify.NewPenaltyLP(nil, lp, robustify.PenaltyQuad, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := robustify.SGD(p, []float64{0}, robustify.SolveOptions{
		Iters:    4000,
		Schedule: robustify.Sqrt(0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 0.05 {
		t.Errorf("LP solution = %v, want 3", res.X[0])
	}
}
