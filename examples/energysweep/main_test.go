package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestEnergySweepSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, true)
	if !strings.Contains(buf.String(), "Base:Cholesky") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
