package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestEnergySweepSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, true)
	if !strings.Contains(buf.String(), "Base:Cholesky") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

// TestEnergySweepDeterministic pins the example's fixed seed: two runs
// must be byte-identical.
func TestEnergySweepDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	run(&a, true)
	run(&b, true)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("example output differs between runs:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
}
