// Voltage overscaling energy study (Fig 6.7).
//
// A guardbanded processor pays full power for every FLOP because its
// direct solvers cannot survive a single fault. The CG-based robust solver
// lets the FPU run below the guardband: more iterations, cheaper FLOPs.
// This example sweeps accuracy targets and reports the cheapest CG
// operating point (voltage + iteration budget) against the Cholesky
// baseline pinned at nominal voltage.
package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"robustify/internal/apps/leastsq"
)

func main() {
	run(os.Stdout, false)
}

// run executes the example, writing the report to w. quick shrinks the
// sweep for smoke tests.
func run(w io.Writer, quick bool) {
	rng := rand.New(rand.NewSource(67))
	inst, err := leastsq.Random(rng, 100, 10, 0)
	if err != nil {
		panic(err)
	}
	o := leastsq.DefaultEnergyOptions()
	o.Trials = 9
	targets := []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	if quick {
		o.Trials = 3
		targets = []float64{1e-4, 1e-2}
	}
	pts := inst.EnergySweep(targets, o)

	fmt.Fprintf(w, "%-10s  %-14s  %-22s\n", "target", "Base:Cholesky", "CG (voltage, iters)")
	for _, p := range pts {
		cg := "infeasible"
		if p.Feasible {
			cg = fmt.Sprintf("%8.0f  (%.2fV, %d iters)", p.CGEnergy, p.CGVoltage, p.CGIters)
		}
		base := "infeasible"
		if !math.IsInf(p.BaselineEnergy, 1) {
			base = fmt.Sprintf("%8.0f", p.BaselineEnergy)
		}
		fmt.Fprintf(w, "%-10.0e  %-14s  %-22s\n", p.Target, base, cg)
	}
	fmt.Fprintln(w, "\nenergy unit: one FLOP at nominal voltage; the FPU is single precision,")
	fmt.Fprintln(w, "so targets below ~1e-7 are unreachable for the iterative solver.")
}
