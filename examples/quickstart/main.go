// Quickstart: solve a least squares problem on a faulty FPU.
//
// A conventional solver (Cholesky on the normal equations) collapses when
// 1% of floating point results are corrupted; the robustified
// gradient-descent form converges anyway. This is the paper's core claim
// in ~60 lines.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"robustify"
)

func main() {
	run(os.Stdout, false)
}

// run executes the example, writing the report to w. quick shrinks the
// sweep for smoke tests.
func run(w io.Writer, quick bool) {
	seeds, iters := uint64(5), 1000
	if quick {
		seeds, iters = 2, 200
	}

	// Build a random overdetermined system A·x* = b (100 equations, 10
	// unknowns — the paper's Fig 6.2 size).
	rng := rand.New(rand.NewSource(42))
	a := robustify.NewMatrix(100, 10)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	xTrue := make([]float64, 10)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 100)
	a.MulVec(nil, xTrue, b)

	inst, err := robustify.NewLeastSquaresInstance(a, b)
	if err != nil {
		panic(err)
	}

	// A stochastic FPU: 1% of floating point results get one bit flipped.
	const faultRate = 0.01

	fmt.Fprintln(w, "seed   Cholesky rel.err   robustified-SGD rel.err")
	for seed := uint64(1); seed <= seeds; seed++ {
		// Conventional baseline: Cholesky factorization, every FLOP on
		// the faulty unit.
		baseUnit := robustify.NewFPU(robustify.WithFaultRate(faultRate, seed))
		xBase := inst.SolveCholesky(baseUnit)

		// Robustified form: minimize ‖Ax−b‖² by stochastic gradient
		// descent. Only the gradient math runs on the faulty unit; step
		// control is reliable, per the paper's assumption.
		robustUnit := robustify.NewFPU(robustify.WithFaultRate(faultRate, seed+100))
		p, err := robustify.NewLeastSquares(robustUnit, a, b)
		if err != nil {
			panic(err)
		}
		res, err := robustify.SGD(p, make([]float64, 10), robustify.SolveOptions{
			Iters:       iters,
			Schedule:    robustify.Linear(8 / p.Lipschitz()),
			TailAverage: iters / 10,
			Aggressive:  robustify.DefaultAggressive(),
		})
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%4d   %-18.3g %-.3g\n", seed, inst.RelErr(xBase), inst.RelErr(res.X))
	}
}
