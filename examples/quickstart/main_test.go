package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, true)
	if !strings.Contains(buf.String(), "Cholesky rel.err") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
