package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestShortestPathsSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, true)
	if !strings.Contains(buf.String(), "Floyd-Warshall") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
