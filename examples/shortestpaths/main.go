// All-pairs shortest paths on a stochastic processor (§4.6).
//
// Floyd-Warshall's relax step is a compare-and-assign: one inverted
// comparison or corrupted addition bakes a wrong distance into the table
// and every later path through it inherits the damage. The LP form
// (maximize ΣD subject to the triangle constraints, Eqs 4.10–4.12) has no
// such memory — faults perturb one gradient step and wash out.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"robustify"
	"robustify/internal/apps/apsp"
)

func main() {
	run(os.Stdout, false)
}

// run executes the example, writing the report to w. quick shrinks the
// sweep for smoke tests.
func run(w io.Writer, quick bool) {
	rates := []float64{0.001, 0.01, 0.05}
	trials, iters, tail := 7, 20000, 4000
	if quick {
		rates = []float64{0.01}
		trials, iters, tail = 3, 3000, 600
	}

	rng := rand.New(rand.NewSource(11))
	inst := apsp.RandomInstance(rng, 6, 8, 5)
	fmt.Fprintf(w, "graph: %d nodes, strongly connected, lengths in [1, 5)\n\n", inst.G.N)

	fmt.Fprintf(w, "rate      Floyd-Warshall err   robust-LP err   (mean rel. distance error, median of %d runs)\n", trials)
	for _, rate := range rates {
		var base, robust []float64
		for trial := 0; trial < trials; trial++ {
			bu := robustify.NewFPU(robustify.WithFaultRate(rate, uint64(trial+1)))
			base = append(base, inst.MeanRelErr(inst.Baseline(bu)))

			ru := robustify.NewFPU(robustify.WithFaultRate(rate, uint64(trial+101)))
			d, _, err := inst.Robust(ru, apsp.Options{Iters: iters, Tail: tail})
			if err != nil {
				panic(err)
			}
			robust = append(robust, inst.MeanRelErr(d))
		}
		fmt.Fprintf(w, "%-8g  %-20.3g %-.3g\n", rate, median(base), median(robust))
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}
