// Robust losses: the same faulty least squares solve with a quadratic and
// a Huber residual loss.
//
// Under FPU faults an occasional residual comes back astronomically large;
// the quadratic loss squares it and lets it dominate the gradient, while
// Huber's bounded influence caps its pull. Swapping the loss is one option
// — the solver, schedule, and fault stream are untouched.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"robustify"
)

func main() {
	run(os.Stdout, false)
}

// run executes the example, writing the report to w. quick shrinks the
// sweep for smoke tests.
func run(w io.Writer, quick bool) {
	seeds, iters := uint64(5), 1500
	if quick {
		seeds, iters = 2, 300
	}

	// A random overdetermined system A·x* = b (60 equations, 8 unknowns)
	// with a handful of grossly corrupted observations — the classic
	// outlier setting, on top of the faulty FPU.
	rng := rand.New(rand.NewSource(7))
	a := robustify.NewMatrix(60, 8)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	xTrue := make([]float64, 8)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 60)
	a.MulVec(nil, xTrue, b)
	for _, i := range []int{5, 23, 41} {
		b[i] += 50 * (1 + rng.Float64())
	}

	const faultRate = 0.01

	solve := func(loss robustify.Robustifier, seed uint64) float64 {
		u := robustify.NewFPU(robustify.WithFaultRate(faultRate, seed))
		p, err := robustify.NewRobustLeastSquares(u, a, b, loss)
		if err != nil {
			panic(err)
		}
		res, err := robustify.SGD(p, make([]float64, 8), robustify.SolveOptions{
			Iters:       iters,
			Schedule:    robustify.Linear(8 / p.Lipschitz()),
			TailAverage: iters / 10,
		})
		if err != nil {
			panic(err)
		}
		// Distance from the true generator, not the contaminated LS
		// minimizer: the outliers drag the latter away from x*.
		return relErr(res.X, xTrue)
	}

	fmt.Fprintln(w, "seed   quadratic rel.err   huber rel.err")
	for seed := uint64(1); seed <= seeds; seed++ {
		huber, err := robustify.NewLoss(robustify.LossHuber, 1.0)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%4d   %-19.3g %-.3g\n", seed, solve(nil, seed), solve(huber, seed))
	}
}

// relErr is ‖x − want‖/‖want‖ in plain (reliable) arithmetic.
func relErr(x, want []float64) float64 {
	var num, den float64
	for i := range x {
		d := x[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return 0
	}
	return sqrt(num / den)
}

// sqrt is a dependency-free Newton square root for the report metric.
func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}
