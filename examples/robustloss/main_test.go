package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRobustLossSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, true)
	if !strings.Contains(buf.String(), "huber rel.err") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

// TestRobustLossDeterministic pins the example's fixed seeds: two runs
// must be byte-identical, faults and all.
func TestRobustLossDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	run(&a, true)
	run(&b, true)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("example output differs between runs:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
}
