// Bipartite matching with the §6.2 enhancement ladder (Fig 6.5).
//
// The basic penalized LP solve plateaus; step scaling, preconditioning,
// penalty annealing, and momentum progressively recover accuracy until the
// stochastic solver beats the Hungarian baseline at every nonzero fault
// rate.
package main

import (
	"fmt"
	"math/rand"

	"robustify"
	"robustify/internal/apps/matching"
)

func main() {
	rng := rand.New(rand.NewSource(100))
	inst := matching.RandomInstance(rng, 5, 6, 30) // 11 nodes, 30 edges
	fmt.Printf("instance: 5x6 bipartite, 30 edges, optimal weight %.3f\n\n", inst.OptimalWeight)

	rates := []float64{0, 0.05, 0.2, 0.5}
	fmt.Printf("%-12s", "variant")
	for _, r := range rates {
		fmt.Printf("  %4.0f%%", r*100)
	}
	fmt.Println("   (success over 10 runs)")

	show := func(name string, run func(u *robustify.FPU) bool) {
		fmt.Printf("%-12s", name)
		for _, rate := range rates {
			ok := 0
			for trial := 0; trial < 10; trial++ {
				u := robustify.NewFPU(robustify.WithFaultRate(rate, uint64(trial)*31+7))
				if run(u) {
					ok++
				}
			}
			fmt.Printf("  %4d", ok*10)
		}
		fmt.Println()
	}

	show("Hungarian", func(u *robustify.FPU) bool {
		return inst.Success(inst.Baseline(u))
	})
	for _, v := range matching.Variants(10000, 6) {
		opts := v.Opts
		show(v.Name, func(u *robustify.FPU) bool {
			assign, _, err := inst.Robust(u, opts)
			if err != nil {
				return false
			}
			return inst.Success(assign)
		})
	}
}
