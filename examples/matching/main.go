// Bipartite matching with the §6.2 enhancement ladder (Fig 6.5).
//
// The basic penalized LP solve plateaus; step scaling, preconditioning,
// penalty annealing, and momentum progressively recover accuracy until the
// stochastic solver beats the Hungarian baseline at every nonzero fault
// rate.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"robustify"
	"robustify/internal/apps/matching"
)

func main() {
	run(os.Stdout, false)
}

// run executes the example, writing the report to w. quick shrinks the
// sweep for smoke tests.
func run(w io.Writer, quick bool) {
	rates := []float64{0, 0.05, 0.2, 0.5}
	trials, iters := 10, 10000
	if quick {
		rates = []float64{0, 0.2}
		trials, iters = 3, 1500
	}

	rng := rand.New(rand.NewSource(100))
	inst := matching.RandomInstance(rng, 5, 6, 30) // 11 nodes, 30 edges
	fmt.Fprintf(w, "instance: 5x6 bipartite, 30 edges, optimal weight %.3f\n\n", inst.OptimalWeight)

	fmt.Fprintf(w, "%-12s", "variant")
	for _, r := range rates {
		fmt.Fprintf(w, "  %4.0f%%", r*100)
	}
	fmt.Fprintf(w, "   (success over %d runs)\n", trials)

	show := func(name string, run func(u *robustify.FPU) bool) {
		fmt.Fprintf(w, "%-12s", name)
		for _, rate := range rates {
			ok := 0
			for trial := 0; trial < trials; trial++ {
				u := robustify.NewFPU(robustify.WithFaultRate(rate, uint64(trial)*31+7))
				if run(u) {
					ok++
				}
			}
			fmt.Fprintf(w, "  %4.0f", 100*float64(ok)/float64(trials))
		}
		fmt.Fprintln(w)
	}

	show("Hungarian", func(u *robustify.FPU) bool {
		return inst.Success(inst.Baseline(u))
	})
	for _, v := range matching.Variants(iters, 6) {
		opts := v.Opts
		show(v.Name, func(u *robustify.FPU) bool {
			assign, _, err := inst.Robust(u, opts)
			if err != nil {
				return false
			}
			return inst.Success(assign)
		})
	}
}
