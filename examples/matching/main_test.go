package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatchingSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, true)
	if !strings.Contains(buf.String(), "Hungarian") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
