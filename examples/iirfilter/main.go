// IIR filtering on a stochastic processor (§4.2, Fig 6.3).
//
// The conventional feed-forward recursion carries corrupted state forward
// forever: one fault early in the signal pollutes everything after it. The
// variational form ‖Bx − Au‖² re-derives every output sample from the
// global post-condition, so faults stay transient.
package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"robustify"
	"robustify/internal/apps/iir"
)

func main() {
	run(os.Stdout, false)
}

// run executes the example, writing the report to w. quick shrinks the
// sweep for smoke tests.
func run(w io.Writer, quick bool) {
	rates := []float64{1e-4, 1e-3, 1e-2}
	samples, trials, iters := 500, 9, 1000
	if quick {
		rates = []float64{1e-3}
		samples, trials, iters = 120, 3, 200
	}

	filter, err := robustify.LowpassFilter(10, 0.5)
	if err != nil {
		panic(err)
	}

	// A noisy sine as the input signal (500 samples, as in the paper).
	rng := rand.New(rand.NewSource(3))
	signal := make([]float64, samples)
	for i := range signal {
		signal[i] = math.Sin(2*math.Pi*float64(i)/23) + 0.3*rng.NormFloat64()
	}
	ideal := filter.Ideal(signal)

	fmt.Fprintf(w, "rate      feed-forward ESR   robust ESR   (median of %d runs)\n", trials)
	for _, rate := range rates {
		var base, robust []float64
		for trial := 0; trial < trials; trial++ {
			bu := robustify.NewFPU(robustify.WithFaultRate(rate, uint64(trial+1)))
			base = append(base, iir.ErrorToSignal(filter.Feedforward(bu, signal), ideal))

			ru := robustify.NewFPU(robustify.WithFaultRate(rate, uint64(trial+101)))
			y, _, err := filter.Robust(ru, signal, robustify.FilterOptions{
				Iters:    iters,
				Schedule: filter.SqrtSchedule(len(signal), 4), // SQS: the paper's best IIR setting
			})
			if err != nil {
				panic(err)
			}
			robust = append(robust, iir.ErrorToSignal(y, ideal))
		}
		fmt.Fprintf(w, "%-8g  %-18.3g %-12.3g\n", rate, median(base), median(robust))
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}
