package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestIIRFilterSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, true)
	if !strings.Contains(buf.String(), "feed-forward ESR") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
