package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSortingSmoke(t *testing.T) {
	var buf bytes.Buffer
	run(&buf, true)
	if !strings.Contains(buf.String(), "quicksort") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
