// Sorting on a stochastic processor: the paper's most striking example of
// robustifying a "fragile" application (§4.3, Fig 6.1).
//
// Quicksort's comparisons are decisions: one corrupted compare misplaces an
// element permanently. Recast as a linear assignment over doubly stochastic
// matrices, sorting becomes an optimization whose gradient noise averages
// out — the robust version keeps sorting correctly at fault rates where
// quicksort has collapsed.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"robustify"
)

func main() {
	run(os.Stdout, false)
}

// run executes the example, writing the report to w. quick shrinks the
// sweep for smoke tests.
func run(w io.Writer, quick bool) {
	rates := []float64{0.001, 0.01, 0.05, 0.2, 0.5}
	trials, iters, tail := 40, 10000, 2000
	if quick {
		rates = []float64{0.01, 0.2}
		trials, iters, tail = 6, 1500, 300
	}

	rng := rand.New(rand.NewSource(7))
	fmt.Fprintf(w, "rate      quicksort   robust-SGD   (success over %d arrays)\n", trials)
	for _, rate := range rates {
		var baseOK, robustOK int
		for trial := 0; trial < trials; trial++ {
			data := make([]float64, 5)
			for i, p := range rng.Perm(5) {
				data[i] = float64(p+1) * 2.5
			}
			seed := uint64(trial + 1)

			bu := robustify.NewFPU(robustify.WithFaultRate(rate, seed))
			if robustify.SortSucceeded(robustify.BaselineSort(bu, data), data) {
				baseOK++
			}

			ru := robustify.NewFPU(robustify.WithFaultRate(rate, seed+1000))
			out, _, err := robustify.RobustSort(ru, data, robustify.SortOptions{
				Iters: iters,
				Tail:  tail, // Polyak averaging: the Theorem 1 iterate
			})
			if err != nil {
				panic(err)
			}
			if robustify.SortSucceeded(out, data) {
				robustOK++
			}
		}
		fmt.Fprintf(w, "%-8g  %5.1f%%      %5.1f%%\n", rate,
			100*float64(baseOK)/float64(trials), 100*float64(robustOK)/float64(trials))
	}
}
