// Sorting on a stochastic processor: the paper's most striking example of
// robustifying a "fragile" application (§4.3, Fig 6.1).
//
// Quicksort's comparisons are decisions: one corrupted compare misplaces an
// element permanently. Recast as a linear assignment over doubly stochastic
// matrices, sorting becomes an optimization whose gradient noise averages
// out — the robust version keeps sorting correctly at fault rates where
// quicksort has collapsed.
package main

import (
	"fmt"
	"math/rand"

	"robustify"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	fmt.Println("rate      quicksort   robust-SGD   (success over 40 arrays)")
	for _, rate := range []float64{0.001, 0.01, 0.05, 0.2, 0.5} {
		var baseOK, robustOK int
		const trials = 40
		for trial := 0; trial < trials; trial++ {
			data := make([]float64, 5)
			for i, p := range rng.Perm(5) {
				data[i] = float64(p+1) * 2.5
			}
			seed := uint64(trial + 1)

			bu := robustify.NewFPU(robustify.WithFaultRate(rate, seed))
			if robustify.SortSucceeded(robustify.BaselineSort(bu, data), data) {
				baseOK++
			}

			ru := robustify.NewFPU(robustify.WithFaultRate(rate, seed+1000))
			out, _, err := robustify.RobustSort(ru, data, robustify.SortOptions{
				Iters: 10000,
				Tail:  2000, // Polyak averaging: the Theorem 1 iterate
			})
			if err != nil {
				panic(err)
			}
			if robustify.SortSucceeded(out, data) {
				robustOK++
			}
		}
		fmt.Printf("%-8g  %5.1f%%      %5.1f%%\n", rate,
			100*float64(baseOK)/trials, 100*float64(robustOK)/trials)
	}
}
