// Package robustify transforms applications into numerical-optimization
// form so they can run correctly on processors whose floating point units
// produce timing errors, reproducing Sloan et al., "A Numerical
// Optimization-Based Methodology for Application Robustification" (DSN
// 2010).
//
// The package exposes three layers:
//
//   - The stochastic FPU substrate (NewFPU, NewInjector, VoltageModel): a
//     simulated faulty floating point unit with single-bit output
//     corruptions at a configurable rate, per-FLOP energy accounting, and
//     the voltage/error-rate model used for energy studies.
//
//   - The robustification core (Problem, LinearProgram, NewPenaltyLP,
//     NewAssignment, NewLeastSquares, Precondition): recast a computation
//     as constrained optimization, convert it mechanically to an
//     unconstrained exact-penalty form, and hand it to a noise-tolerant
//     solver.
//
//   - The solvers (SGD, CG, with Linear/Sqrt/Constant schedules, momentum,
//     aggressive stepping, penalty annealing, and Polyak tail averaging).
//
// Ready-made robustified applications — sorting, bipartite matching, IIR
// filtering, least squares, max-flow, all-pairs shortest paths, eigenpairs
// — live in the internal app packages and are surfaced here through thin
// wrappers (RobustSort, …). The examples/ directory shows the intended
// usage; cmd/robustbench regenerates every figure of the paper.
package robustify

import (
	"robustify/internal/apps/iir"
	"robustify/internal/apps/leastsq"
	"robustify/internal/apps/robsort"
	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/fpu/faultmodel"
	"robustify/internal/linalg"
	"robustify/internal/robust"
	"robustify/internal/solver"
)

// FPU is the simulated stochastic floating point unit. A nil *FPU computes
// exactly; see NewFPU.
type FPU = fpu.Unit

// FPUOption configures NewFPU.
type FPUOption = fpu.Option

// Injector delivers single-bit corruptions to FPU results.
type Injector = fpu.Injector

// BitDistribution is a probability distribution over corrupted bit
// positions.
type BitDistribution = fpu.BitDistribution

// VoltageModel maps supply voltage to FPU error rate and per-FLOP power.
type VoltageModel = fpu.VoltageModel

// NewFPU returns a simulated FPU. With no options it is reliable and
// merely counts FLOPs; add WithFaultRate to make it stochastic.
func NewFPU(opts ...FPUOption) *FPU { return fpu.New(opts...) }

// WithFaultRate makes the unit corrupt results at the given average rate
// (faults per floating point operation), deterministically seeded.
func WithFaultRate(rate float64, seed uint64) FPUOption { return fpu.WithFaultRate(rate, seed) }

// WithInjector installs a custom fault injector.
func WithInjector(in *Injector) FPUOption { return fpu.WithInjector(in) }

// FaultModel is the pluggable injection interface: it decides, per
// committed FLOP, whether and how results corrupt. The stock Injector is
// one implementation; see fpu/faultmodel for the stratified, burst, and
// memory-resident families.
type FaultModel = fpu.FaultModel

// MemoryFaulter marks fault models that corrupt stored vectors between
// solver iterations (via FPU.CorruptSlice) instead of — or on top of —
// FLOP results.
type MemoryFaulter = fpu.MemoryFaulter

// FaultModelSpec names and parameterizes a fault model family; it is the
// JSON shape campaign specs and the -fault-model / -model CLI flags use.
// A nil spec selects the default injector, bit-for-bit.
type FaultModelSpec = faultmodel.Spec

// ParseFaultModel reads a fault model selection from a string: empty or
// "default" yields nil (the stock injector), a bare name selects a family
// with default parameters, and a JSON object sets parameters too.
func ParseFaultModel(s string) (*FaultModelSpec, error) { return faultmodel.Parse(s) }

// WithModel installs a custom fault model on the unit.
func WithModel(m FaultModel) FPUOption { return fpu.WithModel(m) }

// WithOpEnergy sets the energy charged per FLOP (e.g. VoltageModel.Power
// at the operating voltage).
func WithOpEnergy(e float64) FPUOption { return fpu.WithOpEnergy(e) }

// WithSinglePrecision emulates a 32-bit FPU datapath (like the Leon3's).
func WithSinglePrecision() FPUOption { return fpu.WithSinglePrecision() }

// NewInjector builds a fault injector with the default (emulated,
// Fig 5.1-shaped) bit distribution.
func NewInjector(rate float64, seed uint64, opts ...fpu.InjectorOption) *Injector {
	return fpu.NewInjector(rate, seed, opts...)
}

// Bit distributions for injectors (see the paper's Fig 5.1).
var (
	MeasuredDistribution = fpu.MeasuredDistribution
	EmulatedDistribution = fpu.EmulatedDistribution
	UniformDistribution  = fpu.UniformDistribution
	LowOrderDistribution = fpu.LowOrderDistribution
)

// WithDistribution selects an injector's bit distribution.
func WithDistribution(d BitDistribution) fpu.InjectorOption { return fpu.WithDistribution(d) }

// DefaultVoltageModel returns the Fig 5.2 voltage/error-rate model.
func DefaultVoltageModel() VoltageModel { return fpu.DefaultVoltageModel() }

// Matrix is a dense row-major matrix whose kernels run on an FPU.
type Matrix = linalg.Dense

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return linalg.NewDense(r, c) }

// MatrixOf builds a matrix from rows, copying the data.
func MatrixOf(rows [][]float64) *Matrix { return linalg.DenseOf(rows) }

// Problem is an unconstrained minimization problem in robustified form:
// noisy gradients on the stochastic FPU, reliable objective evaluation on
// the control path.
type Problem = core.Problem

// LinearProgram is the constrained variational form min Cᵀx subject to
// Ineq·x ≤ BIneq and Eq·x = BEq.
type LinearProgram = core.LinearProgram

// PenaltyKind selects the exact penalty flavour (PenaltyAbs or
// PenaltyQuad).
type PenaltyKind = core.PenaltyKind

// Penalty kinds (Theorem 2 of the paper).
const (
	PenaltyAbs  = core.PenaltyAbs
	PenaltyQuad = core.PenaltyQuad
)

// NewPenaltyLP converts a LinearProgram to unconstrained exact-penalty
// form with weight mu, gradients on u.
func NewPenaltyLP(u *FPU, lp LinearProgram, kind PenaltyKind, mu float64) (*core.PenaltyLP, error) {
	return core.NewPenaltyLP(u, lp, kind, mu)
}

// NewAssignment builds the penalized linear-assignment problem (sorting,
// matching) over a weight matrix to maximize.
func NewAssignment(u *FPU, w *Matrix, l1, l2 float64) (*core.Assignment, error) {
	return core.NewAssignment(u, w, l1, l2)
}

// NewLeastSquares builds the variational least squares problem
// min ‖a·x − b‖² with gradients on u.
func NewLeastSquares(u *FPU, a linalg.Operator, b []float64) (*core.LeastSquares, error) {
	return core.NewLeastSquares(u, a, b)
}

// Robustifier is a pluggable robust loss ρ with its influence function
// ψ = ρ′/2 and IRLS weight ψ(r)/r, every float op FPU-mediated. The
// quadratic member reproduces the legacy solvers bit for bit; the
// bounded-influence members cap how hard one fault-corrupted residual can
// pull a solve.
type Robustifier = robust.Robustifier

// LossKind names a robust loss in the internal registry.
type LossKind = robust.Kind

// Robust loss kinds.
const (
	LossQuadratic    = robust.Quadratic
	LossHuber        = robust.Huber
	LossPseudoHuber  = robust.PseudoHuber
	LossGemanMcClure = robust.GemanMcClure
	LossSmoothL1     = robust.SmoothL1
)

// NewLoss builds a robust loss; shape ≤ 0 picks the loss's default shape.
func NewLoss(kind LossKind, shape float64) (Robustifier, error) {
	return robust.New(kind, shape)
}

// NewRobustLeastSquares builds min Σρ(rᵢ) over residuals r = a·x − b. A nil
// loss is the quadratic objective, bit-identical to NewLeastSquares.
func NewRobustLeastSquares(u *FPU, a linalg.Operator, b []float64, loss Robustifier) (*core.LeastSquares, error) {
	return core.NewRobustLeastSquares(u, a, b, loss)
}

// NewRobustPenaltyLP converts a LinearProgram to unconstrained penalty form
// with each violation scored by the robust loss (quadratic ≡ PenaltyQuad
// bit for bit).
func NewRobustPenaltyLP(u *FPU, lp LinearProgram, loss Robustifier, mu float64) (*core.PenaltyLP, error) {
	return core.NewRobustPenaltyLP(u, lp, loss, mu)
}

// Precondition rewrites an inequality-only LP in QR-preconditioned
// coordinates (§6.2.1).
func Precondition(u *FPU, lp LinearProgram, kind PenaltyKind, mu float64) (*core.PreconditionedLP, error) {
	return core.Precondition(u, lp, kind, mu)
}

// Solver configuration re-exports.
type (
	// SolveOptions configures SGD.
	SolveOptions = solver.Options
	// Schedule maps iteration number to step size.
	Schedule = solver.Schedule
	// Aggressive configures the adaptive step-size phase (§3.2).
	Aggressive = solver.Aggressive
	// Anneal raises the penalty weight during the solve (§6.2.4).
	Anneal = solver.Anneal
	// Result reports a solve's outcome.
	Result = solver.Result
	// CGOptions configures the conjugate gradient solver.
	CGOptions = solver.CGOptions
	// IRLSOptions configures the iteratively-reweighted least squares loop.
	IRLSOptions = solver.IRLSOptions
)

// Step schedules (§3.2/§6.2.3).
var (
	Linear   = solver.Linear
	Sqrt     = solver.Sqrt
	Constant = solver.Constant
)

// Solver defaults.
var (
	DefaultAggressive = solver.DefaultAggressive
	DefaultAnneal     = solver.DefaultAnneal
)

// SGD minimizes a Problem by stochastic gradient descent (Theorem 1).
func SGD(p Problem, x0 []float64, opts SolveOptions) (Result, error) {
	return solver.SGD(p, x0, opts)
}

// CG solves an SPD system M·x = b by conjugate gradient with noisy
// matrix-vector products (§3.3).
func CG(u *FPU, mul solver.MulFunc, b, x0 []float64, opts CGOptions) (Result, error) {
	return solver.CG(u, mul, b, x0, opts)
}

// NormalEquationsMul returns the (AᵀA)·x operator for least squares CG.
func NormalEquationsMul(u *FPU, a *Matrix) solver.MulFunc {
	return solver.NormalEquationsMul(u, a)
}

// IRLS solves min Σρ(a·x − b) by iteratively reweighted least squares:
// robust-loss weights outside, CG on the weighted normal equations inside.
// A nil or quadratic loss collapses to CG on the normal equations bit for
// bit.
func IRLS(u *FPU, a *Matrix, b []float64, loss Robustifier, x0 []float64, opts IRLSOptions) (Result, error) {
	return solver.IRLS(u, a, b, loss, x0, opts)
}

// SortOptions configures RobustSort.
type SortOptions = robsort.Options

// RobustSort sorts data on the (possibly faulty) unit u via the
// assignment-LP transformation of §4.3. A zero Options value picks sane
// defaults except Iters, which must be positive.
func RobustSort(u *FPU, data []float64, o SortOptions) ([]float64, Result, error) {
	return robsort.Robust(u, data, o)
}

// BaselineSort is the conventional quicksort with comparisons on u — the
// fragile baseline the paper measures against.
func BaselineSort(u *FPU, data []float64) []float64 {
	return robsort.Baseline(u, data)
}

// SortSucceeded reports whether output is exactly the ascending sort of
// input (the paper's success criterion).
func SortSucceeded(output, input []float64) bool {
	return robsort.Success(output, input)
}

// Filter is an IIR filter in transfer-function form.
type Filter = iir.Filter

// NewFilter builds a filter from feed-forward (a) and feedback (b)
// coefficients.
func NewFilter(a, b []float64) (*Filter, error) { return iir.NewFilter(a, b) }

// LowpassFilter designs a stable lowpass with the given tap count and pole
// radius (< 1).
func LowpassFilter(taps int, poleRadius float64) (*Filter, error) {
	return iir.Lowpass(taps, poleRadius)
}

// FilterOptions configures Filter.Robust via the iir package.
type FilterOptions = iir.Options

// LeastSquaresInstance is a least squares problem with its exact solution
// and the full solver/baseline suite of §6.1/§6.3 attached.
type LeastSquaresInstance = leastsq.Instance

// NewLeastSquaresInstance wraps A, b, solving reliably for the reference.
func NewLeastSquaresInstance(a *Matrix, b []float64) (*LeastSquaresInstance, error) {
	return leastsq.New(a, b)
}
