package robustify_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark executes the same code path as the
// full `cmd/robustbench` reproduction, scaled down via the figures
// package's Quick configuration, and reports the figure's headline numbers
// as custom metrics so `go test -bench` output doubles as a regression
// record of the reproduction's shape.
//
// Full-size reproductions:  go run ./cmd/robustbench -fig all
// Scaled benchmark sweep:   go test -bench=. -benchmem

import (
	"math/rand"
	"testing"

	"robustify"
	"robustify/internal/figures"
	"robustify/internal/harness"
)

// benchFigure runs one figure builder b.N times and reports headline
// metrics from the last table.
func benchFigure(b *testing.B, id string, metrics func(*harness.Table, *testing.B)) {
	b.Helper()
	build := figures.Lookup(id)
	if build == nil {
		b.Fatalf("unknown figure %q", id)
	}
	var table *harness.Table
	for i := 0; i < b.N; i++ {
		table = build(figures.Config{Quick: true, Seed: 1})
	}
	if metrics != nil {
		metrics(table, b)
	}
}

// lastValue returns the value of a series at the highest fault rate.
func lastValue(t *harness.Table, name string) float64 {
	for _, s := range t.Series {
		if s.Name == name && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1].Value
		}
	}
	return -1
}

// firstValue returns the value of a series at the lowest fault rate.
func firstValue(t *harness.Table, name string) float64 {
	for _, s := range t.Series {
		if s.Name == name && len(s.Points) > 0 {
			return s.Points[0].Value
		}
	}
	return -1
}

func BenchmarkFig5_1(b *testing.B) {
	benchFigure(b, "5.1", func(t *harness.Table, b *testing.B) {
		// Headline: high-significance mass of the emulated distribution.
		var high float64
		for _, s := range t.Series {
			if s.Name != "emulated" {
				continue
			}
			for _, p := range s.Points {
				if p.Rate >= 42 {
					high += p.Value
				}
			}
		}
		b.ReportMetric(high, "msb-mass")
	})
}

func BenchmarkFig5_2(b *testing.B) {
	benchFigure(b, "5.2", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "error rate (errors/op)"), "rate@0.60V")
	})
}

func BenchmarkFig6_1(b *testing.B) {
	benchFigure(b, "6.1", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "Base"), "base@max-rate")
		b.ReportMetric(lastValue(t, "SGD+AS,SQS"), "sqs@max-rate")
	})
}

func BenchmarkFig6_2(b *testing.B) {
	benchFigure(b, "6.2", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "Base: SVD"), "svd-relerr")
		b.ReportMetric(lastValue(t, "SGD,LS"), "sgd-relerr")
	})
}

func BenchmarkFig6_3(b *testing.B) {
	benchFigure(b, "6.3", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "Base"), "base-esr")
		b.ReportMetric(lastValue(t, "SGD+AS,SQS"), "sqs-esr")
	})
}

func BenchmarkFig6_4(b *testing.B) {
	benchFigure(b, "6.4", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "Base"), "base@max-rate")
		b.ReportMetric(lastValue(t, "SGD+AS,SQS"), "sqs@max-rate")
	})
}

func BenchmarkFig6_5(b *testing.B) {
	benchFigure(b, "6.5", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "ANNEAL"), "anneal@50%")
		b.ReportMetric(lastValue(t, "ALL"), "all@50%")
	})
}

func BenchmarkFig6_6(b *testing.B) {
	benchFigure(b, "6.6", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "CG, N=10"), "cg-relerr")
		b.ReportMetric(lastValue(t, "Base: Cholesky"), "chol-relerr")
	})
}

func BenchmarkFig6_7(b *testing.B) {
	benchFigure(b, "6.7", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "CG"), "cg-energy@loose")
		b.ReportMetric(lastValue(t, "Base: Cholesky"), "base-energy")
	})
}

func BenchmarkMomentumAblation(b *testing.B) {
	benchFigure(b, "momentum", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(firstValue(t, "sort"), "sort")
		b.ReportMetric(firstValue(t, "sort+mom0.5"), "sort+mom")
	})
}

func BenchmarkSolverFLOPs(b *testing.B) {
	benchFigure(b, "flops", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(firstValue(t, "CG,N=10"), "cg10-flops")
		b.ReportMetric(firstValue(t, "Cholesky"), "chol-flops")
	})
}

// --- Kernel micro-benchmarks: the per-FLOP cost of the simulated FPU and
// the hot solver paths, for performance tracking. ---

func BenchmarkFPUMulAdd(b *testing.B) {
	u := robustify.NewFPU(robustify.WithFaultRate(0.01, 1))
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc = u.FMA(1.0000001, acc, 1)
	}
	_ = acc
}

func BenchmarkFPUReliableMulAdd(b *testing.B) {
	u := robustify.NewFPU()
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc = u.FMA(1.0000001, acc, 1)
	}
	_ = acc
}

func BenchmarkRobustSortIteration(b *testing.B) {
	data := []float64{5, 2, 4, 1, 3}
	u := robustify.NewFPU(robustify.WithFaultRate(0.05, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := robustify.RobustSort(u, data, robustify.SortOptions{Iters: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquaresSGD(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := robustify.NewMatrix(100, 10)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	rhs := make([]float64, 100)
	a.MulVec(nil, make([]float64, 10), rhs)
	u := robustify.NewFPU(robustify.WithFaultRate(0.01, 1))
	p, err := robustify.NewLeastSquares(u, a, rhs)
	if err != nil {
		b.Fatal(err)
	}
	sched := robustify.Linear(8 / p.Lipschitz())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := robustify.SGD(p, make([]float64, 10), robustify.SolveOptions{
			Iters: 100, Schedule: sched,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultModelAblation(b *testing.B) {
	benchFigure(b, "faultmodel", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "sort/emulated"), "emulated@max")
		b.ReportMetric(lastValue(t, "sort/uniform"), "uniform@max")
	})
}

func BenchmarkPenaltyAblation(b *testing.B) {
	benchFigure(b, "penalty", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "apsp/abs"), "apsp-abs")
		b.ReportMetric(lastValue(t, "apsp/quad"), "apsp-quad")
	})
}

func BenchmarkSVMExtension(b *testing.B) {
	benchFigure(b, "svm", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "perceptron"), "perceptron@max")
		b.ReportMetric(lastValue(t, "robust-pegasos"), "pegasos@max")
	})
}

func BenchmarkGraphLP(b *testing.B) {
	benchFigure(b, "graphlp", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "apsp/robust-LP"), "apsp-lp-err")
	})
}

func BenchmarkEigenpairs(b *testing.B) {
	benchFigure(b, "eigen", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(lastValue(t, "robust-rayleigh"), "rayleigh-err")
		b.ReportMetric(lastValue(t, "power-iteration"), "power-err")
	})
}
